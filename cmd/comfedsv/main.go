// Command comfedsv regenerates every figure of the paper's evaluation
// (Section VII). Each experiment prints the same rows/series the paper
// plots; see EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	comfedsv -exp fig1|example1|fig2|fig3|fig5|fig6|fig7|fig8|eps-rank|theorem1|all [flags]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"comfedsv/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment to run: fig1, example1, fig2, fig3, fig5, fig6, fig7, fig8, eps-rank, theorem1, baselines, all")
		dataSet = flag.String("dataset", "", "restrict to one dataset: synthetic, mnist, fmnist, cifar10 (default: all used by the experiment)")
		trials  = flag.Int("trials", 0, "override trial count (0 = experiment default)")
		rounds  = flag.Int("rounds", 0, "override round count T (0 = experiment default)")
		scale   = flag.String("scale", "default", "preset: quick (CI-sized) or default (paper-shaped)")
	)
	flag.Parse()
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	opts := options{dataset: *dataSet, trials: *trials, rounds: *rounds, quick: *scale == "quick"}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"fig1", "example1", "fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "eps-rank", "theorem1", "baselines"}
	}
	for _, name := range names {
		if err := runExperiment(name, opts); err != nil {
			fmt.Fprintf(os.Stderr, "comfedsv: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

type options struct {
	dataset string
	trials  int
	rounds  int
	quick   bool
}

func (o options) kinds(defaults []experiments.DatasetKind) ([]experiments.DatasetKind, error) {
	if o.dataset == "" {
		return defaults, nil
	}
	k, err := experiments.ParseDatasetKind(o.dataset)
	if err != nil {
		return nil, err
	}
	return []experiments.DatasetKind{k}, nil
}

func runExperiment(name string, opts options) error {
	fmt.Printf("== %s ==\n", name)
	switch name {
	case "fig1":
		return runFig1(opts)
	case "example1":
		return runExample1(opts)
	case "fig2":
		return runFig2(opts)
	case "fig3":
		return runFig3(opts)
	case "fig5":
		return runFig5(opts)
	case "fig6":
		return runFig6(opts)
	case "fig7":
		return runFig7(opts)
	case "fig8":
		return runFig8(opts)
	case "eps-rank":
		return runEpsRank(opts)
	case "theorem1":
		return runTheorem1(opts)
	case "baselines":
		return runBaselines(opts)
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}

func runFig1(opts options) error {
	t := 10
	if opts.rounds > 0 {
		t = opts.rounds
	}
	series := experiments.Fig1(t, experiments.Fig1Defaults())
	fmt.Printf("P_s: probability that FedSV violates sδ-fairness after T=%d rounds\n", t)
	header := []string{"s"}
	for _, s := range series {
		header = append(header, fmt.Sprintf("p=%.3f", s.P))
	}
	fmt.Println(strings.Join(header, "\t"))
	for i := 0; i <= t; i++ {
		row := []string{fmt.Sprint(i)}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.4f", s.Values[i]))
		}
		fmt.Println(strings.Join(row, "\t"))
	}
	return nil
}

func runExample1(opts options) error {
	cfg := experiments.DefaultFairnessConfig(experiments.MNIST)
	// Example 1 demonstrates FedSV unfairness on plain FedAvg: no
	// Everyone-Being-Heard round (that is an Assumption-1 construct for
	// ComFedSV; Fig. 5 uses the shared-trace setting instead).
	cfg.ForceFullFirstRound = false
	applyFairnessOpts(&cfg, opts)
	res, err := experiments.Fairness(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("duplicated clients 0 and %d on %v, %d trials (plain FedAvg, no full round)\n",
		cfg.NumClients-1, cfg.Kind, cfg.Trials)
	fmt.Printf("P(d_FedSV > 0.5) = %.2f   (paper reports ≈ 0.65)\n", res.FedSVExceeds(0.5))
	fmt.Printf("P(d_ComFedSV > 0.5) = %.2f — computed WITHOUT Assumption 1; its degradation\n",
		res.ComFedSVExceeds(0.5))
	fmt.Println("here is why the Everyone-Being-Heard round matters (compare fig5).")
	return nil
}

func runFig2(opts options) error {
	kinds, err := opts.kinds([]experiments.DatasetKind{experiments.Synthetic, experiments.MNIST, experiments.CIFAR})
	if err != nil {
		return err
	}
	for _, k := range kinds {
		cfg := experiments.DefaultLowRankConfig(k)
		if opts.rounds > 0 {
			cfg.Rounds = opts.rounds
		}
		if opts.quick {
			cfg.Rounds = 30
			cfg.SamplesPerClient = 20
			cfg.TestSamples = 60
		}
		res, err := experiments.LowRank(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%v: utility matrix %dx%d, leading singular values:\n", k, res.MatrixRows, res.MatrixCols)
		for i, sv := range res.SingularValues {
			fmt.Printf("  σ_%-2d = %.6e\n", i+1, sv)
		}
		for _, eps := range []float64{1e-1, 1e-2, 1e-3} {
			fmt.Printf("  rank_%.0e = %d\n", eps, res.EpsRanks[eps])
		}
	}
	return nil
}

func runFig3(opts options) error {
	cfg := experiments.DefaultRankImpactConfig()
	if opts.rounds > 0 {
		cfg.Rounds = opts.rounds
	}
	if opts.quick {
		cfg.Rounds = 30
		cfg.SamplesPerClient = 20
		cfg.TestSamples = 60
	}
	points, err := experiments.RankImpact(cfg)
	if err != nil {
		return err
	}
	fmt.Println("rank r\trel. error ‖U−WHᵀ‖F/‖U‖F\ttrain RMSE")
	for _, p := range points {
		fmt.Printf("%d\t%.4f\t%.6f\n", p.Rank, p.RelativeError, p.TrainRMSE)
	}
	return nil
}

func runFig5(opts options) error {
	kinds, err := opts.kinds(experiments.AllKinds)
	if err != nil {
		return err
	}
	thresholds := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	for _, k := range kinds {
		cfg := experiments.DefaultFairnessConfig(k)
		applyFairnessOpts(&cfg, opts)
		res, err := experiments.Fairness(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%v: empirical CDF of d_{0,%d} over %d trials\n", k, cfg.NumClients-1, cfg.Trials)
		fmt.Println("t\tP(d_FedSV<=t)\tP(d_ComFedSV<=t)")
		fedsv := ecdfOf(res.FedSVDiffs)
		com := ecdfOf(res.ComFedSVDiffs)
		for _, t := range thresholds {
			fmt.Printf("%.1f\t%.3f\t%.3f\n", t, fedsv(t), com(t))
		}
	}
	return nil
}

func runFig6(opts options) error {
	kinds, err := opts.kinds(experiments.AllKinds)
	if err != nil {
		return err
	}
	fmt.Println("dataset\tground-truth\tFedSV\tComFedSV   (Spearman ρ with true noise ranking)")
	for _, k := range kinds {
		cfg := experiments.DefaultNoisyDataConfig(k)
		if opts.trials > 0 {
			cfg.Trials = opts.trials
		}
		if opts.rounds > 0 {
			cfg.Rounds = opts.rounds
		}
		if opts.quick {
			cfg.Trials = 3
			cfg.SamplesPerClient = 20
			cfg.TestSamples = 60
		}
		res, err := experiments.NoisyData(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%v\t%.3f\t%.3f\t%.3f\n", k, res.GroundTruthCorr, res.FedSVCorr, res.ComFedSVCorr)
	}
	return nil
}

func runFig7(opts options) error {
	kinds, err := opts.kinds([]experiments.DatasetKind{experiments.Synthetic, experiments.MNIST})
	if err != nil {
		return err
	}
	for _, k := range kinds {
		cfg := experiments.DefaultNoisyLabelConfig(k)
		if opts.rounds > 0 {
			cfg.Rounds = opts.rounds
		}
		if opts.quick {
			cfg.NumClients = 40
			cfg.NumNoisy = 4
			cfg.Rounds = 10
			cfg.MCSamples = 80
			cfg.TestSamples = 60
		}
		res, err := experiments.NoisyLabel(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%v: Jaccard(noisy clients, bottom-%d valuations), N=%d\n", k, cfg.NumNoisy, cfg.NumClients)
		fmt.Println("participation\tFedSV\tComFedSV")
		for _, p := range res.Points {
			fmt.Printf("%.0f%%\t%.3f\t%.3f\n", 100*p.Participation, p.FedSVJaccard, p.ComFedSVJaccard)
		}
	}
	return nil
}

func runFig8(opts options) error {
	cfg := experiments.DefaultTimingConfig()
	if opts.rounds > 0 {
		cfg.Rounds = opts.rounds
	}
	if opts.quick {
		cfg.ClientCounts = []int{10, 20, 30, 40}
		cfg.Rounds = 5
	}
	points, err := experiments.Timing(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("participation rate %.0f%% (paper: time ratio approaches it as N grows)\n", 100*cfg.Participation)
	fmt.Println("N\tFedSV(s)\tComFedSV(s)\ttime ratio\tcall ratio")
	for _, p := range points {
		fmt.Printf("%d\t%.3f\t%.3f\t%.3f\t%.3f\n", p.NumClients, p.FedSVSeconds, p.ComFedSVSeconds, p.Ratio, p.CallRatio)
	}
	return nil
}

func runEpsRank(opts options) error {
	cfg := experiments.DefaultEpsRankConfig()
	if opts.quick {
		cfg.RoundsSweep = []int{10, 20, 40}
		cfg.NumClients = 6
	}
	points, err := experiments.EpsRank(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("ε-rank of the utility matrix at ε=%.0e (Props. 1–2: O(log T))\n", cfg.Eps)
	fmt.Println("T\tln T\teps-rank")
	for _, p := range points {
		fmt.Printf("%d\t%.2f\t%d\n", p.Rounds, p.LogT, p.EpsRank)
	}
	return nil
}

func runTheorem1(opts options) error {
	cfg := experiments.DefaultTheorem1Config()
	res, err := experiments.Theorem1(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("completion tolerance δ = %.6f, bound 4δ/N = %.6f\n", res.Delta, res.Bound)
	fmt.Printf("ComFedSV symmetry gap |s_0 − s_%d| = %.6f (duplicated pair)\n", cfg.NumClients-1, res.SymmetryGap)
	fmt.Printf("ground-truth gap = %.2e (exactly 0 up to roundoff)\n", res.GroundTruthGap)
	fmt.Printf("Theorem 1 bound holds: %v\n", res.Holds)
	return nil
}

func runBaselines(opts options) error {
	kinds, err := opts.kinds([]experiments.DatasetKind{experiments.Synthetic, experiments.MNIST})
	if err != nil {
		return err
	}
	for _, k := range kinds {
		cfg := experiments.DefaultBaselinesConfig(k)
		if opts.trials > 0 {
			cfg.Trials = opts.trials
		}
		if opts.quick {
			cfg.Trials = 2
			cfg.SamplesPerClient = 30
			cfg.TestSamples = 60
		}
		res, err := experiments.Baselines(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%v: Spearman with true quality ranking / mean utility calls\n", k)
		for _, name := range experiments.BaselineOrder {
			fmt.Printf("  %-14s rho=%+.3f calls=%.0f\n", name, res.Correlations[name], res.UtilityCalls[name])
		}
	}
	return nil
}

func applyFairnessOpts(cfg *experiments.FairnessConfig, opts options) {
	if opts.trials > 0 {
		cfg.Trials = opts.trials
	}
	if opts.rounds > 0 {
		cfg.Rounds = opts.rounds
	}
	if opts.quick {
		cfg.Trials = 5
		cfg.SamplesPerClient = 20
		cfg.TestSamples = 60
	}
}

func ecdfOf(samples []float64) func(float64) float64 {
	return func(t float64) float64 {
		if len(samples) == 0 {
			return 0
		}
		n := 0
		for _, x := range samples {
			if x <= t {
				n++
			}
		}
		return float64(n) / float64(len(samples))
	}
}
