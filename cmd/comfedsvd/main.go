// Command comfedsvd serves ComFedSV data valuation as a long-running HTTP
// daemon: clients POST valuation jobs (client datasets + options) to
// /v1/jobs, poll status and progress, and fetch the finished FedSV /
// ComFedSV report. Jobs run asynchronously on a bounded worker pool;
// finished reports are optionally persisted to disk so they survive
// restarts. Training runs can be registered once as shared /v1/runs
// resources (content-addressed, optionally persisted via -runs-dir) and
// referenced by any number of jobs through "run_id", which amortizes the
// training trace and the test-loss evaluator cache across jobs without
// changing a byte of any report. See internal/api for the route table and
// README.md for curl examples.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"comfedsv/internal/api"
	"comfedsv/internal/persist"
	"comfedsv/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "valuation worker goroutines (0 = GOMAXPROCS)")
		par      = flag.Int("parallelism", 0, "per-job CPU parallelism for jobs that don't set it (0 = fair share of GOMAXPROCS across workers)")
		queue    = flag.Int("queue", 64, "max queued jobs before submissions are rejected")
		storeDir = flag.String("store", "", "directory for persisted job reports (empty = in-memory only)")
		runsDir  = flag.String("runs-dir", "", "directory for persisted shared training runs (empty = in-memory only)")
		timeout  = flag.Duration("drain", 30*time.Second, "max time to drain running jobs on shutdown")
	)
	flag.Parse()

	cfg := service.Config{Workers: *workers, QueueDepth: *queue, DefaultParallelism: *par}
	if *storeDir != "" {
		store, err := persist.NewJobStore(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "comfedsvd:", err)
			os.Exit(2)
		}
		cfg.Store = store
	}
	if *runsDir != "" {
		runStore, err := persist.NewRunStore(*runsDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "comfedsvd:", err)
			os.Exit(2)
		}
		cfg.RunStore = runStore
	}
	mgr, err := service.NewManager(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "comfedsvd:", err)
		os.Exit(2)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.NewServer(mgr).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// Bound the whole request read: without it a client trickling a
		// large job body holds a connection and goroutine open forever.
		ReadTimeout: 5 * time.Minute,
		IdleTimeout: 2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("comfedsvd: listening on %s (workers=%d parallelism=%d queue=%d store=%q runs-dir=%q)",
		*addr, mgr.Workers(), mgr.DefaultParallelism(), *queue, *storeDir, *runsDir)

	select {
	case err := <-errc:
		log.Fatalf("comfedsvd: server: %v", err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately

	log.Printf("comfedsvd: shutting down (draining up to %v)", *timeout)
	// Separate budgets: a stalled HTTP client must not eat into the time
	// promised to running jobs by -drain.
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 10*time.Second)
	if err := srv.Shutdown(httpCtx); err != nil {
		log.Printf("comfedsvd: http shutdown: %v", err)
	}
	cancelHTTP()
	drainCtx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := mgr.Shutdown(drainCtx); err != nil {
		log.Printf("comfedsvd: job drain: %v (queued and running jobs were aborted)", err)
	}
	log.Print("comfedsvd: bye")
}
