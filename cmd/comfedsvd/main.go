// Command comfedsvd serves ComFedSV data valuation as a long-running HTTP
// daemon: clients POST valuation jobs (client datasets + options) to
// /v1/jobs, poll status and per-stage/per-shard progress, and fetch the
// finished FedSV / ComFedSV report. Each job is decomposed into a staged
// task graph (prepare, N observation shards, merge+completion, Shapley
// extraction) scheduled round-robin across jobs on one bounded worker
// pool, so a large valuation no longer monopolizes a worker while small
// jobs starve behind it; sharding and scheduling never change a byte of
// any report. Finished reports are optionally persisted to disk so they
// survive restarts, and -job-ttl evicts old terminal jobs. Training runs
// can be registered once as shared /v1/runs resources (content-addressed,
// optionally persisted via -runs-dir) and referenced by any number of jobs
// through "run_id", which amortizes the training trace and the test-loss
// evaluator cache across jobs. /v1/metrics exposes scheduler counters in
// Prometheus text format. See internal/api for the route table and
// README.md for curl examples.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"comfedsv/internal/api"
	"comfedsv/internal/persist"
	"comfedsv/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "scheduler worker goroutines, each running one stage task at a time (0 = GOMAXPROCS)")
		par      = flag.Int("parallelism", 0, "per-task CPU parallelism for jobs that don't set it (0 = fair share of GOMAXPROCS across workers)")
		shards   = flag.Int("shards", 0, "observation shards per job for jobs that don't set it (0 = 1; sharding never changes a report)")
		queue    = flag.Int("queue", 64, "max queued jobs before submissions are rejected")
		storeDir = flag.String("store", "", "directory for persisted job reports (empty = in-memory only)")
		runsDir  = flag.String("runs-dir", "", "directory for persisted shared training runs (empty = in-memory only)")
		jobTTL   = flag.Duration("job-ttl", 0, "evict terminal jobs (memory and store) this long after they finish (0 = keep forever)")
		timeout  = flag.Duration("drain", 30*time.Second, "max time to drain running jobs on shutdown")
	)
	flag.Parse()

	cfg := service.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		DefaultParallelism: *par,
		DefaultShards:      *shards,
		JobTTL:             *jobTTL,
	}
	if *storeDir != "" {
		store, err := persist.NewJobStore(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "comfedsvd:", err)
			os.Exit(2)
		}
		cfg.Store = store
	}
	if *runsDir != "" {
		runStore, err := persist.NewRunStore(*runsDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "comfedsvd:", err)
			os.Exit(2)
		}
		cfg.RunStore = runStore
	}
	mgr, err := service.NewManager(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "comfedsvd:", err)
		os.Exit(2)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.NewServer(mgr).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// Bound the whole request read: without it a client trickling a
		// large job body holds a connection and goroutine open forever.
		ReadTimeout: 5 * time.Minute,
		IdleTimeout: 2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("comfedsvd: listening on %s (workers=%d parallelism=%d shards=%d queue=%d store=%q runs-dir=%q job-ttl=%v)",
		*addr, mgr.Workers(), mgr.DefaultParallelism(), mgr.DefaultShards(), *queue, *storeDir, *runsDir, *jobTTL)

	select {
	case err := <-errc:
		log.Fatalf("comfedsvd: server: %v", err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately

	log.Printf("comfedsvd: shutting down (draining up to %v)", *timeout)
	// Separate budgets: a stalled HTTP client must not eat into the time
	// promised to running jobs by -drain.
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 10*time.Second)
	if err := srv.Shutdown(httpCtx); err != nil {
		log.Printf("comfedsvd: http shutdown: %v", err)
	}
	cancelHTTP()
	drainCtx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := mgr.Shutdown(drainCtx); err != nil {
		log.Printf("comfedsvd: job drain: %v (queued and running jobs were aborted)", err)
	}
	log.Print("comfedsvd: bye")
}
