// Command comfedsvd serves ComFedSV data valuation as a long-running HTTP
// daemon: clients POST valuation jobs (client datasets + options) to
// /v1/jobs, poll status and per-stage/per-shard progress, and fetch the
// finished FedSV / ComFedSV report. Each job is decomposed into a staged
// task graph (prepare, N observation shards, merge+completion, Shapley
// extraction) scheduled round-robin across jobs on one bounded worker
// pool, so a large valuation no longer monopolizes a worker while small
// jobs starve behind it; sharding and scheduling never change a byte of
// any report. Finished reports are optionally persisted to disk so they
// survive restarts, and -job-ttl evicts old terminal jobs. Training runs
// can be registered once as shared /v1/runs resources (content-addressed,
// optionally persisted via -runs-dir) and referenced by any number of jobs
// through "run_id", which amortizes the training trace and the test-loss
// evaluator cache across jobs. /v1/metrics exposes scheduler counters and
// per-stage latency histograms in Prometheus text format; -pprof-addr
// serves net/http/pprof on a separate listener. All daemon output is
// structured log/slog (text by default, -log-json for JSON), with job and
// run IDs attached to lifecycle events. See internal/api for the route
// table and README.md for curl examples.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"comfedsv/internal/api"
	"comfedsv/internal/dispatch"
	"comfedsv/internal/persist"
	"comfedsv/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "scheduler worker goroutines, each running one stage task at a time (0 = GOMAXPROCS)")
		par        = flag.Int("parallelism", 0, "per-task CPU parallelism for jobs that don't set it (0 = fair share of GOMAXPROCS across workers)")
		shards     = flag.Int("shards", 0, "observation shards per job for jobs that don't set it (0 = 1; sharding never changes a report)")
		tol        = flag.Float64("tolerance", 0, "default convergence tolerance for Monte-Carlo jobs that don't set one: adaptive valuation stops sampling once per-client estimates move less than this between waves, with the job's sample count as the budget (0 = fixed-budget valuation)")
		queue      = flag.Int("queue", 64, "max queued jobs before submissions are rejected")
		storeDir   = flag.String("store", "", "directory for persisted job reports (empty = in-memory only)")
		runsDir    = flag.String("runs-dir", "", "directory for persisted shared training runs (empty = in-memory only)")
		noCells    = flag.Bool("no-cell-cache", false, "disable the persistent utility-cell cache (with -runs-dir): no sidecar reads on run load, no flushes at merge/completion, no worker-delta absorption; reports are unchanged either way")
		jobTTL     = flag.Duration("job-ttl", 0, "evict terminal jobs (memory and store) this long after they finish (0 = keep forever)")
		retries    = flag.Int("max-task-retries", 3, "max re-executions of a transiently failed stage task before the job fails")
		taskTO     = flag.Duration("task-timeout", 0, "per-task execution deadline; a timed-out task is retried as transient (0 = none)")
		jobTO      = flag.Duration("job-timeout", 0, "whole-job wall-clock deadline from start to finish (0 = none)")
		timeout    = flag.Duration("drain", 30*time.Second, "max time to drain running jobs on shutdown")
		dispatchOn = flag.Bool("dispatch", false, "lease observation shards to remote comfedsv-worker daemons over /v1/worker (requires -runs-dir shared with the workers); local execution remains the fallback whenever no worker is live")
		leaseTTL   = flag.Duration("lease-ttl", 2*time.Minute, "revoke and re-lease a shard lease not completed within this window (with -dispatch)")
		workerTTL  = flag.Duration("worker-ttl", 30*time.Second, "consider a worker dead after this long without a heartbeat or poll (with -dispatch)")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = disabled); keep it off any public interface")
		logJSON    = flag.Bool("log-json", false, "emit logs as JSON instead of logfmt-style text")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, error (per-request access logs are debug)")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "comfedsvd: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	hopts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, hopts)
	} else {
		handler = slog.NewTextHandler(os.Stderr, hopts)
	}
	logger := slog.New(handler)
	fatal := func(msg string, err error) {
		logger.Error(msg, "error", err)
		os.Exit(2)
	}

	if *tol < 0 {
		fmt.Fprintf(os.Stderr, "comfedsvd: -tolerance must not be negative, got %v\n", *tol)
		os.Exit(2)
	}
	cfg := service.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		DefaultParallelism: *par,
		DefaultShards:      *shards,
		DefaultTolerance:   *tol,
		JobTTL:             *jobTTL,
		MaxTaskRetries:     *retries,
		TaskTimeout:        *taskTO,
		JobTimeout:         *jobTO,
		DisableCellCache:   *noCells,
		Logger:             logger,
	}
	if *storeDir != "" {
		store, err := persist.NewJobStore(*storeDir)
		if err != nil {
			fatal("opening job store", err)
		}
		cfg.Store = store
	}
	if *runsDir != "" {
		runStore, err := persist.NewRunStore(*runsDir)
		if err != nil {
			fatal("opening run store", err)
		}
		cfg.RunStore = runStore
	}
	var coord *dispatch.Coordinator
	if *dispatchOn {
		if cfg.RunStore == nil {
			fmt.Fprintln(os.Stderr, "comfedsvd: -dispatch requires -runs-dir (workers hydrate training traces from the shared run store)")
			os.Exit(2)
		}
		coord = dispatch.NewCoordinator(dispatch.Config{
			LeaseTTL:  *leaseTTL,
			WorkerTTL: *workerTTL,
			Logger:    logger.With("component", "dispatch"),
		})
		cfg.Dispatcher = coord
	}
	mgr, err := service.NewManager(cfg)
	if err != nil {
		fatal("starting manager", err)
	}

	apiSrv := api.NewServer(mgr)
	if coord != nil {
		apiSrv.SetDispatcher(coord)
	}
	// Access logs are chatty under load, so they go out at debug level;
	// lifecycle events (submit/start/done/failed) stay at info.
	apiSrv.SetLogger(slog.New(handler).With("component", "http"))
	srv := &http.Server{
		Addr:              *addr,
		Handler:           apiSrv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// Bound the whole request read: without it a client trickling a
		// large job body holds a connection and goroutine open forever.
		ReadTimeout: 5 * time.Minute,
		// Reports for large jobs are big but written in one burst; a minute
		// of write budget only ever cuts off a stalled reader.
		WriteTimeout: time.Minute,
		IdleTimeout:  2 * time.Minute,
	}

	if *pprofAddr != "" {
		// pprof gets its own mux on its own listener so profiling is never
		// reachable through the public API port.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{
			Addr:              *pprofAddr,
			Handler:           pmux,
			ReadHeaderTimeout: 10 * time.Second,
			ReadTimeout:       time.Minute,
			// CPU and trace profiles stream for their whole profiling window;
			// give writes a generous but bounded budget.
			WriteTimeout: 5 * time.Minute,
			IdleTimeout:  2 * time.Minute,
		}
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := psrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("pprof server", "error", err)
			}
		}()
		defer psrv.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("listening",
		"addr", *addr,
		"workers", mgr.Workers(),
		"parallelism", mgr.DefaultParallelism(),
		"shards", mgr.DefaultShards(),
		"tolerance", *tol,
		"queue", *queue,
		"store", *storeDir,
		"runs_dir", *runsDir,
		"job_ttl", *jobTTL,
		"dispatch", *dispatchOn,
	)

	select {
	case err := <-errc:
		fatal("server", err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately

	logger.Info("shutting down", "drain", *timeout)
	if coord != nil {
		// Close the coordinator first: long-polling workers get an
		// immediate ErrClosed instead of pinning connections through the
		// HTTP drain window, and in-flight remote shards fail over to the
		// local fallback or drain with the manager below.
		coord.Close()
	}
	// Separate budgets: a stalled HTTP client must not eat into the time
	// promised to running jobs by -drain.
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 10*time.Second)
	if err := srv.Shutdown(httpCtx); err != nil {
		logger.Warn("http shutdown", "error", err)
	}
	cancelHTTP()
	drainCtx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := mgr.Shutdown(drainCtx); err != nil {
		logger.Warn("job drain: queued and running jobs were aborted", "error", err)
	}
	logger.Info("bye")
}
