// Command datavalue computes data valuations from a recorded federated
// training trace (produced by `fedsim -save run.json`), without retraining:
//
//	datavalue -run run.json                      # FedSV + ComFedSV
//	datavalue -run run.json -methods all         # + LOO, TMC, group-testing
//	datavalue -run run.json -out report.json     # machine-readable report
//
// This is the offline half of the paper's pipeline (Fig. 4): the server
// records local updates during training; valuation is a post-processing
// step over the utility matrix.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"comfedsv/internal/baselines"
	"comfedsv/internal/mc"
	"comfedsv/internal/persist"
	"comfedsv/internal/shapley"
	"comfedsv/internal/utility"
)

func main() {
	var (
		runPath = flag.String("run", "", "path to a run recorded by fedsim -save (required)")
		methods = flag.String("methods", "fedsv,comfedsv", "comma-separated: fedsv, comfedsv, loo, tmc, gt, or 'all'")
		rank    = flag.Int("rank", 5, "matrix-completion rank for ComFedSV")
		samples = flag.Int("samples", 0, "Monte-Carlo permutations for ComFedSV (0 = exact for N≤14, else 2·N·lnN)")
		outPath = flag.String("out", "", "optional path for a JSON report")
		seed    = flag.Int64("seed", 1, "random seed for sampled estimators")
	)
	flag.Parse()
	if *runPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*runPath)
	if err != nil {
		fatal(err)
	}
	run, err := persist.LoadRun(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	n := run.NumClients()
	fmt.Printf("loaded run: %d clients, %d rounds, %d model parameters\n",
		n, len(run.Rounds), run.Model.NumParams())

	want := map[string]bool{}
	for _, m := range strings.Split(*methods, ",") {
		m = strings.TrimSpace(strings.ToLower(m))
		if m == "all" {
			for _, x := range []string{"fedsv", "comfedsv", "loo", "tmc", "gt"} {
				want[x] = true
			}
			continue
		}
		if m != "" {
			want[m] = true
		}
	}

	report := &persist.Report{Methods: map[string][]float64{}}
	eval := utility.NewEvaluator(run)

	if want["fedsv"] {
		report.Methods["fedsv"] = shapley.FedSV(eval)
	}
	if want["comfedsv"] {
		values, err := comFedSV(eval, *rank, *samples, *seed)
		if err != nil {
			fatal(err)
		}
		report.Methods["comfedsv"] = values
	}
	if want["loo"] {
		report.Methods["leave-one-out"] = baselines.LeaveOneOut(eval)
	}
	if want["tmc"] {
		v, err := baselines.TMCShapley(eval, baselines.DefaultTMCConfig(*seed))
		if err != nil {
			fatal(err)
		}
		report.Methods["tmc-shapley"] = v
	}
	if want["gt"] {
		v, err := baselines.GroupTesting(eval, baselines.DefaultGroupTestingConfig(*seed))
		if err != nil {
			fatal(err)
		}
		report.Methods["group-testing"] = v
	}
	if len(report.Methods) == 0 {
		fatal(fmt.Errorf("no recognized methods in %q", *methods))
	}

	names := make([]string, 0, len(report.Methods))
	for name := range report.Methods {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("\nclient")
	for _, name := range names {
		fmt.Printf("\t%s", name)
	}
	fmt.Println()
	for i := 0; i < n; i++ {
		fmt.Printf("%d", i)
		for _, name := range names {
			fmt.Printf("\t%+.5f", report.Methods[name][i])
		}
		fmt.Println()
	}
	fmt.Printf("\nutility evaluations: %d\n", eval.Calls())

	if *outPath != "" {
		out, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer out.Close()
		if err := persist.SaveReport(out, report); err != nil {
			fatal(err)
		}
		fmt.Printf("report written to %s\n", *outPath)
	}
}

func comFedSV(eval *utility.Evaluator, rank, samples int, seed int64) ([]float64, error) {
	n := eval.Run().NumClients()
	if samples <= 0 && n <= 14 {
		res, err := shapley.ComFedSVExact(eval, mc.DefaultConfig(rank))
		if err != nil {
			return nil, err
		}
		return res.Values, nil
	}
	cfg := shapley.DefaultMonteCarloConfig(n, rank, seed)
	if samples > 0 {
		cfg.Samples = samples
	}
	res, err := shapley.MonteCarlo(eval, cfg)
	if err != nil {
		return nil, err
	}
	return res.Values, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datavalue:", err)
	os.Exit(1)
}
