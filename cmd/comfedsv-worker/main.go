// Command comfedsv-worker is the remote half of distributed observation:
// a work-pull daemon that registers with a comfedsvd coordinator, long-polls
// POST /v1/worker/lease for observation-shard leases, evaluates each leased
// permutation slice against the training trace hydrated from the shared run
// store, and reports the observed utility cells back with their content
// digest. The coordinator verifies every digest before merging, so adding
// workers (or losing one mid-shard — its lease expires and the shard is
// re-leased) never changes a byte of any report.
//
// Hydrated runs are cached by run ID alone — utility cells are pure
// functions of the trace, independent of any job's budget or seed — and
// warm-started from the run's `<runID>.cells` sidecar when present, so a
// worker skips every evaluation some earlier job, process, or peer
// already paid for. Each completion ships the cells the lease newly
// evaluated back to the coordinator, which persists them for the next
// reader. A damaged sidecar is quarantined and the run proceeds cold;
// the cache is an optimization, never a correctness dependency.
//
// The worker needs exactly two things from the deployment: the
// coordinator's base URL and the same -runs-dir the coordinator persists
// shared training runs into (a shared filesystem or a synchronized copy).
// Jobs whose runs the worker cannot load are failed back to the
// coordinator, which falls back to local execution via its retry ladder.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"comfedsv"
	"comfedsv/internal/dispatch"
	"comfedsv/internal/persist"
)

func main() {
	var (
		coordURL = flag.String("coordinator", "http://localhost:8080", "base URL of the comfedsvd coordinator")
		runsDir  = flag.String("runs-dir", "", "directory of the shared run store (must hold the same runs the coordinator persists)")
		workerID = flag.String("id", "", "worker identity reported to the coordinator (default host-pid)")
		par      = flag.Int("parallelism", 0, "CPU parallelism for slice evaluation (0 = GOMAXPROCS)")
		poll     = flag.Duration("poll", 30*time.Second, "long-poll window per lease request")
		logJSON  = flag.Bool("log-json", false, "emit logs as JSON instead of logfmt-style text")
		logLevel = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "comfedsv-worker: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	hopts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, hopts)
	} else {
		handler = slog.NewTextHandler(os.Stderr, hopts)
	}
	logger := slog.New(handler)

	if *runsDir == "" {
		fmt.Fprintln(os.Stderr, "comfedsv-worker: -runs-dir is required (the shared run store the coordinator persists training traces into)")
		os.Exit(2)
	}
	runs, err := persist.NewRunStore(*runsDir)
	if err != nil {
		logger.Error("opening run store", "error", err)
		os.Exit(2)
	}

	id := *workerID
	if id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	parallelism := *par
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w := &worker{
		client:      dispatch.NewClient(*coordURL, id),
		runs:        runs,
		parallelism: parallelism,
		poll:        *poll,
		log:         logger.With("worker", id),
		trained:     make(map[string]*comfedsv.TrainedRun),
	}
	if err := w.run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		w.log.Error("worker exited", "error", err)
		os.Exit(1)
	}
	w.log.Info("bye")
}

// maxCachedRuns bounds the worker's hydrated-run cache. A TrainedRun
// holds the trace, the test set, and the utility-cell memo table, so an
// unbounded cache on a long-lived worker is a slow leak; eviction only
// costs a re-hydration (and the sidecar re-warms the cells). Keyed by
// run ID alone — NOT (run, budget, seed) — because cells depend only on
// the trace: two jobs over the same run with different budgets or seeds
// share every overlapping cell. The observation plan, which does depend
// on (budget, seed), is cheap next to cell evaluation and is rebuilt per
// lease.
const maxCachedRuns = 4

type worker struct {
	client      *dispatch.Client
	runs        *persist.RunStore
	parallelism int
	poll        time.Duration
	log         *slog.Logger

	mu      sync.Mutex
	trained map[string]*comfedsv.TrainedRun
}

// run is the daemon loop: register (retrying until the coordinator is
// reachable), heartbeat in the background, and pull leases until the
// context dies. A graceful exit deregisters so the coordinator re-leases
// immediately instead of waiting out the liveness window.
func (w *worker) run(ctx context.Context) error {
	reg, err := w.register(ctx)
	if err != nil {
		return err
	}
	w.log.Info("registered",
		"lease_ttl_seconds", reg.LeaseTTLSeconds,
		"worker_ttl_seconds", reg.WorkerTTLSeconds,
	)

	// Heartbeat at a third of the liveness window so one dropped request
	// doesn't kill the registration. Heartbeats re-register idempotently,
	// healing the worker after a coordinator restart.
	hbInterval := time.Duration(reg.WorkerTTLSeconds * float64(time.Second) / 3)
	if hbInterval < time.Second {
		hbInterval = time.Second
	}
	hbCtx, stopHB := context.WithCancel(ctx)
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(hbInterval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				if err := w.client.Heartbeat(hbCtx); err != nil && hbCtx.Err() == nil {
					w.log.Warn("heartbeat", "error", err)
				}
			}
		}
	}()
	defer func() {
		stopHB()
		hbWG.Wait()
		// The parent context is already dead here; give the goodbye its
		// own short budget.
		dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := w.client.Deregister(dctx); err != nil {
			w.log.Warn("deregister", "error", err)
		}
	}()

	backoff := time.Second
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, err := w.client.Lease(ctx, w.poll)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.log.Warn("lease poll", "error", err, "backoff", backoff)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > 30*time.Second {
				backoff = 30 * time.Second
			}
			continue
		}
		backoff = time.Second
		if lease == nil {
			continue // poll window elapsed with no work
		}
		w.serve(ctx, lease)
	}
}

// register announces the worker, retrying with capped backoff until the
// coordinator answers — workers routinely start before the daemon.
func (w *worker) register(ctx context.Context) (*dispatch.RegisterResponse, error) {
	backoff := time.Second
	for {
		reg, err := w.client.Register(ctx)
		if err == nil {
			return reg, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		w.log.Warn("register", "error", err, "backoff", backoff)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 30*time.Second {
			backoff = 30 * time.Second
		}
	}
}

// serve evaluates one lease and reports the outcome. Evaluation errors
// are failed back to the coordinator (which re-leases or falls back to
// local execution); report errors are logged and abandoned — the lease
// deadline re-leases the shard regardless.
func (w *worker) serve(ctx context.Context, lease *dispatch.Lease) {
	t := lease.Task
	log := w.log.With("lease", lease.ID, "job", t.JobID, "run", t.RunID,
		"shard", t.Shard, "lo", t.Lo, "hi", t.Hi)
	log.Info("lease granted")
	start := time.Now()
	obs, cells, err := w.observe(ctx, t)
	if err != nil {
		if ctx.Err() != nil {
			// Shutdown mid-shard: the deferred deregister revokes the
			// lease, so the coordinator re-leases without waiting out
			// the deadline. Don't report a spurious failure.
			return
		}
		log.Warn("shard evaluation failed", "error", err)
		if ferr := w.client.Fail(ctx, lease.ID, err.Error()); ferr != nil {
			log.Warn("reporting failure", "error", ferr)
		}
		return
	}
	if err := w.client.Complete(ctx, lease.ID, obs, cells); err != nil {
		// The cell delta dies with the failed report — ExportNewCells
		// already drained it. Only an optimization is lost: the
		// re-leased shard (here or elsewhere) re-derives the cells.
		log.Warn("reporting shard", "error", err)
		return
	}
	newCells := 0
	if cells != nil {
		newCells = len(cells.Cells)
	}
	log.Info("shard completed", "cells", len(obs.Cells), "digest", obs.Digest,
		"new_cache_cells", newCells,
		"elapsed", time.Since(start).Round(time.Millisecond))
}

// observe evaluates the leased permutation slice against the cached
// (sidecar-warmed) run, rebuilding the job's observation plan for this
// lease, and drains the newly evaluated utility cells to ship home with
// the completion. serve calls are serial, so the drained delta is
// exactly this lease's contribution (plus any cells a previously failed
// report lost custody of — re-exporting those is harmless).
func (w *worker) observe(ctx context.Context, t dispatch.Task) (*comfedsv.ShardObservations, *comfedsv.CellBatch, error) {
	tr, err := w.trainedRun(t.RunID)
	if err != nil {
		return nil, nil, err
	}
	so, err := comfedsv.NewShardObserver(ctx, tr, t.Budget, t.Seed, w.parallelism)
	if err != nil {
		return nil, nil, fmt.Errorf("rebuilding observation plan for run %s: %w", t.RunID, err)
	}
	obs, err := so.ObserveSlice(ctx, t.Lo, t.Hi)
	if err != nil {
		return nil, nil, err
	}
	return obs, tr.ExportNewCells(), nil
}

// trainedRun returns the cached hydrated run for runID, loading the
// trace from the shared store and warm-starting its evaluator from the
// cell sidecar on first use.
func (w *worker) trainedRun(runID string) (*comfedsv.TrainedRun, error) {
	w.mu.Lock()
	tr, ok := w.trained[runID]
	w.mu.Unlock()
	if ok {
		return tr, nil
	}
	run, err := w.runs.LoadRun(runID)
	if err != nil {
		return nil, fmt.Errorf("hydrating run %s: %w", runID, err)
	}
	tr = comfedsv.NewTrainedRun(run)
	w.hydrateCells(runID, tr)
	w.mu.Lock()
	defer w.mu.Unlock()
	if cached, ok := w.trained[runID]; ok {
		return cached, nil
	}
	if len(w.trained) >= maxCachedRuns {
		for k := range w.trained {
			delete(w.trained, k)
			break
		}
	}
	w.trained[runID] = tr
	return tr, nil
}

// hydrateCells warm-starts a freshly hydrated run from its cell-cache
// sidecar. Strictly best-effort: a damaged sidecar is quarantined
// (keeping any batches that verified before the damage) and the run
// proceeds cold — the lease must never fail over a cache.
func (w *worker) hydrateCells(runID string, tr *comfedsv.TrainedRun) {
	batches, err := w.runs.ReadCells(runID)
	if err != nil {
		w.quarantineCells(runID, err)
		return
	}
	added := 0
	for _, b := range batches {
		n, perr := tr.PreloadCells(b)
		if perr != nil {
			w.quarantineCells(runID, perr)
			break
		}
		added += n
	}
	if added > 0 {
		w.log.Info("cell cache preloaded", "run", runID, "cells", added, "batches", len(batches))
	}
}

func (w *worker) quarantineCells(runID string, cause error) {
	dst, qerr := w.runs.QuarantineCells(runID)
	if qerr != nil {
		dst = "(rename failed: " + qerr.Error() + ")"
	}
	w.log.Warn("cell cache corrupt, quarantined", "run", runID, "quarantine", dst, "error", cause)
}
