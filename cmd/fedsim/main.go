// Command fedsim runs a raw FedAvg simulation (Section III of the paper)
// and prints the per-round test loss and accuracy — useful for sanity-
// checking the training substrate independently of the valuation pipeline.
package main

import (
	"flag"
	"fmt"
	"os"

	"comfedsv/internal/experiments"
	"comfedsv/internal/fl"
	"comfedsv/internal/model"
	"comfedsv/internal/persist"
	"comfedsv/internal/utility"
)

func main() {
	var (
		dataSet  = flag.String("dataset", "mnist", "dataset: synthetic, mnist, fmnist, cifar10")
		clients  = flag.Int("clients", 10, "number of clients N")
		perRound = flag.Int("per-round", 3, "clients selected per round K")
		rounds   = flag.Int("rounds", 50, "number of rounds T")
		samples  = flag.Int("samples", 40, "training samples per client")
		test     = flag.Int("test", 120, "test samples held by the server")
		nonIID   = flag.Bool("non-iid", true, "use the non-IID partition")
		seed     = flag.Int64("seed", 1, "random seed")
		savePath = flag.String("save", "", "record the full training trace as JSON (for cmd/datavalue)")
	)
	flag.Parse()

	kind, err := experiments.ParseDatasetKind(*dataSet)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedsim:", err)
		os.Exit(2)
	}
	sc := experiments.Scenario{
		Kind:             kind,
		NumClients:       *clients,
		SamplesPerClient: *samples,
		TestSamples:      *test,
		NonIID:           *nonIID,
		Seed:             *seed,
	}
	locals, testSet, m := sc.Build()

	cfg := fl.DefaultConfig(*rounds, *perRound)
	cfg.Seed = *seed + 1
	run, err := fl.TrainRun(cfg, m, locals, testSet)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedsim:", err)
		os.Exit(1)
	}

	fmt.Printf("FedAvg on %v: N=%d, K=%d, T=%d\n", kind, *clients, *perRound, *rounds)
	fmt.Println("round\ttest loss\tselected")
	for t, rd := range run.Rounds {
		if t%5 == 0 || t == len(run.Rounds)-1 {
			fmt.Printf("%d\t%.4f\t%v\n", t, rd.TestLoss, rd.Selected)
		}
	}
	fmt.Printf("final test loss %.4f, accuracy %.2f%%\n",
		m.Loss(run.Final, testSet), 100*model.Accuracy(m, run.Final, testSet))

	// Report how much of the utility matrix one pass observes.
	eval := utility.NewEvaluator(run)
	st := utility.NewStore(len(run.Rounds), run.NumClients())
	utility.ObserveSelected(eval, st)
	fmt.Printf("observed utility entries: %d over %d registered subsets (density %.3f)\n",
		st.NumObserved(), st.NumColumns(), st.Density())

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fedsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := persist.SaveRun(f, run); err != nil {
			fmt.Fprintln(os.Stderr, "fedsim:", err)
			os.Exit(1)
		}
		fmt.Printf("trace saved to %s\n", *savePath)
	}
}
