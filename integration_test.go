package comfedsv

// Cross-module integration tests: the offline persistence pipeline
// (fedsim → datavalue in library form) and consistency between the
// serial, memoized, and parallel utility-matrix paths.

import (
	"bytes"
	"math"
	"testing"

	"comfedsv/internal/baselines"
	"comfedsv/internal/dataset"
	"comfedsv/internal/fl"
	"comfedsv/internal/mc"
	"comfedsv/internal/model"
	"comfedsv/internal/persist"
	"comfedsv/internal/rng"
	"comfedsv/internal/shapley"
	"comfedsv/internal/utility"
)

func integrationRun(t *testing.T) *fl.Run {
	t.Helper()
	full := dataset.GenerateImages(dataset.MNISTLikeConfig(501), 200)
	g := rng.New(502)
	train, test := dataset.TrainTestSplit(full, 50.0/200, g)
	parts := dataset.PartitionIID(train, 6, g)
	m := model.NewMLP(full.Dim(), 6, full.NumClasses)
	cfg := fl.DefaultConfig(6, 2)
	cfg.LearningRate = 0.1
	run, err := fl.TrainRun(cfg, m, parts, test)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestOfflinePipelineRoundTrip(t *testing.T) {
	// Record a trace, serialize it, reload it, and verify every valuation
	// method produces identical results on the original and reloaded runs.
	run := integrationRun(t)
	var buf bytes.Buffer
	if err := persist.SaveRun(&buf, run); err != nil {
		t.Fatal(err)
	}
	loaded, err := persist.LoadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, a, b []float64) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: lengths %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-12 {
				t.Fatalf("%s: value %d differs after round-trip: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
	check("fedsv", shapley.FedSV(utility.NewEvaluator(run)), shapley.FedSV(utility.NewEvaluator(loaded)))

	comA, err := shapley.ComFedSVExact(utility.NewEvaluator(run), mc.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	comB, err := shapley.ComFedSVExact(utility.NewEvaluator(loaded), mc.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	check("comfedsv", comA.Values, comB.Values)

	for _, method := range baselines.AllMethods {
		va, err := baselines.Compute(method, utility.NewEvaluator(run), 503)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := baselines.Compute(method, utility.NewEvaluator(loaded), 503)
		if err != nil {
			t.Fatal(err)
		}
		check(method.String(), va, vb)
	}
}

func TestUtilityPathsAgree(t *testing.T) {
	// The memoized evaluator, the serial full matrix, the parallel full
	// matrix, and the batch evaluator must all agree cell-for-cell.
	run := integrationRun(t)
	e := utility.NewEvaluator(run)
	serial := utility.FullMatrix(e)
	parallel := utility.ParallelFullMatrix(run, 3)

	n := run.NumClients()
	var cells []utility.Cell
	var want []float64
	for tr := 0; tr < len(run.Rounds); tr++ {
		for mask := uint64(1); mask < 1<<uint(n); mask += 7 { // sample cells
			cells = append(cells, utility.Cell{Round: tr, Subset: utility.FromMask(n, mask)})
			want = append(want, serial.At(tr, int(mask)))
		}
	}
	got := utility.EvaluateBatch(run, cells, 4)
	for i := range cells {
		if math.Abs(got[i]-want[i]) > 1e-15 {
			t.Fatalf("batch cell %d: %v vs %v", i, got[i], want[i])
		}
		if p := parallel.At(cells[i].Round, int(cells[i].Subset.Mask())); p != want[i] {
			t.Fatalf("parallel cell %d: %v vs %v", i, p, want[i])
		}
	}
}

func TestGroundTruthAdditivityAcrossRoundSplits(t *testing.T) {
	// Theorem 1's additivity axiom, integration-level: valuations computed
	// over rounds [0,3) plus rounds [3,6) equal valuations over [0,6),
	// because U = U₁ + U₂ splits by rounds.
	run := integrationRun(t)
	firstHalf := &fl.Run{Model: run.Model, Test: run.Test, Clients: run.Clients, Rounds: run.Rounds[:3], Final: run.Final}
	secondHalf := &fl.Run{Model: run.Model, Test: run.Test, Clients: run.Clients, Rounds: run.Rounds[3:], Final: run.Final}

	whole := shapley.GroundTruth(utility.NewEvaluator(run))
	a := shapley.GroundTruth(utility.NewEvaluator(firstHalf))
	b := shapley.GroundTruth(utility.NewEvaluator(secondHalf))
	for i := range whole {
		if math.Abs(whole[i]-(a[i]+b[i])) > 1e-9 {
			t.Fatalf("additivity violated at client %d: %v vs %v + %v", i, whole[i], a[i], b[i])
		}
	}
}

func TestFedSVAdditivityAcrossRoundSplits(t *testing.T) {
	// FedSV is a per-round sum, so it is exactly additive across round
	// partitions as well.
	run := integrationRun(t)
	firstHalf := &fl.Run{Model: run.Model, Test: run.Test, Clients: run.Clients, Rounds: run.Rounds[:3], Final: run.Final}
	secondHalf := &fl.Run{Model: run.Model, Test: run.Test, Clients: run.Clients, Rounds: run.Rounds[3:], Final: run.Final}

	whole := shapley.FedSV(utility.NewEvaluator(run))
	a := shapley.FedSV(utility.NewEvaluator(firstHalf))
	b := shapley.FedSV(utility.NewEvaluator(secondHalf))
	for i := range whole {
		if math.Abs(whole[i]-(a[i]+b[i])) > 1e-9 {
			t.Fatalf("additivity violated at client %d", i)
		}
	}
}
