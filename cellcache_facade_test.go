package comfedsv

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// TestWarmTrainedRunReportByteIdentical pins the cell cache's façade
// contract: cells exported after one valuation, preloaded into a freshly
// trained (identical) TrainedRun, serve the second valuation entirely from
// the warm cache and leave the report byte-identical.
func TestWarmTrainedRunReportByteIdentical(t *testing.T) {
	clients, test := makeClients(t, 6, 20, 40, 521)
	opts := DefaultOptions(10)
	opts.Rounds = 4
	opts.ClientsPerRound = 3
	opts.Seed = 521
	opts.MonteCarloSamples = 40
	opts.Shards = 2

	ctx := context.Background()
	tr1, err := TrainCtx(ctx, clients, test, opts)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewValuation(tr1, opts).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	coldJSON, _ := json.Marshal(cold)

	cells := tr1.ExportNewCells()
	if cells == nil || len(cells.Cells) == 0 {
		t.Fatal("cold valuation exported no cells")
	}
	if err := cells.Verify(); err != nil {
		t.Fatalf("exported batch does not verify: %v", err)
	}
	// A second export has nothing new: the first drain took everything.
	if again := tr1.ExportNewCells(); again != nil {
		t.Fatalf("second export returned %d cells, want nil", len(again.Cells))
	}

	// Training is deterministic, so a fresh TrainedRun over the same spec
	// is the trace a restarted process would load from disk.
	tr2, err := TrainCtx(ctx, clients, test, opts)
	if err != nil {
		t.Fatal(err)
	}
	added, err := tr2.PreloadCells(cells)
	if err != nil {
		t.Fatal(err)
	}
	if added != len(cells.Cells) {
		t.Fatalf("preloaded %d of %d cells", added, len(cells.Cells))
	}
	warm, err := NewValuation(tr2, opts).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	warmJSON, _ := json.Marshal(warm)
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Fatalf("warm report is not byte-identical:\n%s\nvs\n%s", warmJSON, coldJSON)
	}

	// The warm run paid for nothing: every evaluation hit a preloaded cell.
	if misses := tr2.CacheStats().Misses; misses != 0 {
		t.Fatalf("warm valuation paid %d evaluations, want 0", misses)
	}
	if _, hits := tr2.CellCacheStats(); hits == 0 {
		t.Fatal("warm valuation recorded no warm hits")
	}
	// Warm-served cells are not re-exported — no sidecar self-amplification.
	if exp := tr2.ExportNewCells(); exp != nil {
		t.Fatalf("warm valuation re-exported %d cells, want nil", len(exp.Cells))
	}
}
